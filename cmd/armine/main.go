// Command armine runs the interpretable analysis workflow on a trace CSV:
// merge (optional node file), preprocess, mine frequent itemsets with
// FP-Growth, generate association rules and print the pruned keyword
// analysis as a rule table.
//
// With -pipeline pai|supercloud|philly the canonical case-study pipeline is
// used; with -pipeline auto a generic pipeline is derived from the file:
// every numeric column is quartile-binned (with a zero bin when -zero lists
// the column), every column named by -tier is activity-tiered, and -skip
// columns are excluded.
//
// Examples:
//
//	tracegen -trace pai -jobs 20000 -out /tmp/t
//	armine -scheduler /tmp/t/pai_scheduler.csv -node /tmp/t/pai_node.csv \
//	       -pipeline pai -keyword 'sm_util=0%'
//
//	armine -scheduler jobs.csv -pipeline auto -tier user -skip job_id \
//	       -zero gpu_util -keyword 'status=failed' -rows 15
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rules"
)

func main() {
	schedPath := flag.String("scheduler", "", "scheduler-level CSV (required)")
	nodePath := flag.String("node", "", "node-level CSV to join on job_id (optional)")
	pipeline := flag.String("pipeline", "auto", "pipeline: pai, supercloud, philly or auto")
	keyword := flag.String("keyword", "", "keyword item to analyze (required), e.g. 'status=failed'")
	rows := flag.Int("rows", 10, "max rows per table section")
	minSupport := flag.Float64("min-support", 0.05, "minimum itemset support")
	minLift := flag.Float64("min-lift", 1.5, "minimum rule lift")
	maxLen := flag.Int("max-len", 5, "maximum itemset length")
	cLift := flag.Float64("c-lift", 1.5, "pruning lift slack C_lift")
	cSupp := flag.Float64("c-supp", 1.5, "pruning support slack C_supp")
	tiers := flag.String("tier", "", "comma-separated columns to activity-tier (auto pipeline)")
	skips := flag.String("skip", "job_id,submit_s", "comma-separated columns to skip (auto pipeline)")
	zeros := flag.String("zero", "", "comma-separated numeric columns given a zero bin (auto pipeline)")
	negative := flag.Bool("negative", false, "also print protective rules (antecedents that suppress the keyword)")
	format := flag.String("format", "table", "primary output: 'table' (human) or 'json' (machine-readable analysis)")
	export := flag.String("export", "", "also export the analysis: 'csv' or 'markdown' to stdout")
	describe := flag.Bool("describe", false, "only print per-column summaries of the (joined) trace and exit")
	flag.Parse()

	if err := run(config{
		schedPath: *schedPath, nodePath: *nodePath, pipeline: *pipeline,
		keyword: *keyword, rows: *rows,
		minSupport: *minSupport, minLift: *minLift, maxLen: *maxLen,
		cLift: *cLift, cSupp: *cSupp,
		tiers: splitList(*tiers), skips: splitList(*skips), zeros: splitList(*zeros),
		negative: *negative, format: *format, export: *export, describe: *describe,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "armine:", err)
		os.Exit(1)
	}
}

type config struct {
	schedPath, nodePath, pipeline, keyword string
	rows, maxLen                           int
	minSupport, minLift, cLift, cSupp      float64
	tiers, skips, zeros                    []string
	negative                               bool
	format                                 string
	export                                 string
	describe                               bool
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(cfg config) error {
	if cfg.schedPath == "" {
		return fmt.Errorf("-scheduler is required")
	}
	if cfg.keyword == "" && !cfg.describe {
		return fmt.Errorf("-keyword is required")
	}
	switch cfg.format {
	case "", "table", "json":
	default:
		// Fail before mining: a typo'd -format should not cost a full run.
		return fmt.Errorf("unknown format %q (want table or json)", cfg.format)
	}
	frame, err := dataset.ReadCSVFile(cfg.schedPath)
	if err != nil {
		return err
	}
	if cfg.nodePath != "" {
		node, err := dataset.ReadCSVFile(cfg.nodePath)
		if err != nil {
			return err
		}
		frame, err = frame.InnerJoin(node, "job_id", "job_id")
		if err != nil {
			return fmt.Errorf("joining on job_id: %w", err)
		}
	}
	if cfg.describe {
		dataset.WriteDescription(os.Stdout, frame.Describe())
		return nil
	}

	p, err := buildPipeline(cfg, frame)
	if err != nil {
		return err
	}
	p.Opts.MinSupport = cfg.minSupport
	p.Opts.MinLift = cfg.minLift
	p.Opts.MaxItemsetLen = cfg.maxLen
	p.Opts.CLift = cfg.cLift
	p.Opts.CSupp = cfg.cSupp

	res, err := p.Mine(frame)
	if err != nil {
		return err
	}
	a, err := res.Analyze(cfg.keyword)
	if err != nil {
		return err
	}
	switch cfg.format {
	case "", "table":
		fmt.Printf("mined %d transactions: %d frequent itemsets, %d rules\n",
			res.NumTransactions, len(res.Frequent), len(res.Rules()))
		fmt.Print(core.FormatTable(a, cfg.rows))
	case "json":
		// Machine-readable mode: the analysis object is the whole stdout,
		// so pipelines can `armine -format json | jq` without scraping.
		if err := core.WriteRulesJSON(os.Stdout, a); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want table or json)", cfg.format)
	}
	if cfg.negative {
		neg, err := res.AnalyzeNegative(cfg.keyword, rules.NegativeOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("\nprotective rules (suppressing %s):\n%s", cfg.keyword, core.FormatNegative(neg, cfg.rows))
	}
	switch cfg.export {
	case "":
	case "csv":
		fmt.Println()
		if err := core.WriteRulesCSV(os.Stdout, a); err != nil {
			return err
		}
	case "markdown":
		fmt.Println()
		if err := core.WriteRulesMarkdown(os.Stdout, a, cfg.rows); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown export format %q", cfg.export)
	}
	return nil
}

func buildPipeline(cfg config, frame *dataset.Frame) (*core.Pipeline, error) {
	switch cfg.pipeline {
	case "pai":
		return core.PAIPipeline(), nil
	case "supercloud":
		return core.SuperCloudPipeline(), nil
	case "philly":
		return core.PhillyPipeline(), nil
	case "auto":
		return autoPipeline(cfg, frame), nil
	default:
		return nil, fmt.Errorf("unknown pipeline %q", cfg.pipeline)
	}
}

// autoPipeline derives a generic pipeline: quartile-bin every numeric
// column (zero bins where requested), tier the named categorical columns.
func autoPipeline(cfg config, frame *dataset.Frame) *core.Pipeline {
	p := &core.Pipeline{Skip: cfg.skips}
	skip := make(map[string]bool)
	for _, s := range cfg.skips {
		skip[s] = true
	}
	zero := make(map[string]bool)
	for _, z := range cfg.zeros {
		zero[z] = true
	}
	for i := 0; i < frame.NumCols(); i++ {
		col := frame.ColumnAt(i)
		if skip[col.Name()] || col.Kind() == dataset.Bool || col.Kind() == dataset.String {
			continue
		}
		p.Features = append(p.Features, core.FeatureSpec{
			Column:      col.Name(),
			ZeroSpecial: zero[col.Name()],
		})
	}
	for _, tier := range cfg.tiers {
		p.Tiers = append(p.Tiers, core.TierSpec{Column: tier, Out: tier + "_tier"})
	}
	return p
}
