package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func writeTestTrace(t *testing.T) (sched, node string) {
	t.Helper()
	tr, err := trace.GeneratePAI(trace.Config{Jobs: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sched = filepath.Join(dir, "sched.csv")
	node = filepath.Join(dir, "node.csv")
	if err := tr.Scheduler.WriteCSVFile(sched); err != nil {
		t.Fatal(err)
	}
	if err := tr.Node.WriteCSVFile(node); err != nil {
		t.Fatal(err)
	}
	return sched, node
}

func baseConfig(sched, node string) config {
	return config{
		schedPath: sched, nodePath: node,
		pipeline: "pai", keyword: "sm_util=0%", rows: 5,
		minSupport: 0.05, minLift: 1.5, maxLen: 5, cLift: 1.5, cSupp: 1.5,
	}
}

func TestRunCanonicalPipeline(t *testing.T) {
	sched, node := writeTestTrace(t)
	if err := run(baseConfig(sched, node)); err != nil {
		t.Fatal(err)
	}
}

func TestRunAutoPipeline(t *testing.T) {
	sched, node := writeTestTrace(t)
	cfg := baseConfig(sched, node)
	cfg.pipeline = "auto"
	cfg.keyword = "status=failed"
	cfg.tiers = []string{"user", "group"}
	cfg.skips = []string{"job_id", "submit_s", "num_tasks", "model"}
	cfg.zeros = []string{"sm_util", "gmem_used_gb"}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	sched, node := writeTestTrace(t)
	cases := []func(*config){
		func(c *config) { c.schedPath = "" },
		func(c *config) { c.keyword = "" },
		func(c *config) { c.pipeline = "bogus" },
		func(c *config) { c.schedPath = "/nonexistent.csv" },
		func(c *config) { c.nodePath = "/nonexistent.csv" },
		func(c *config) { c.keyword = "no=such_item" },
	}
	for i, mutate := range cases {
		cfg := baseConfig(sched, node)
		mutate(&cfg)
		if err := run(cfg); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestRunWithoutNodeFile(t *testing.T) {
	sched, _ := writeTestTrace(t)
	cfg := baseConfig(sched, "")
	cfg.pipeline = "auto"
	cfg.keyword = "status=failed"
	cfg.tiers = []string{"user"}
	cfg.skips = []string{"job_id", "submit_s", "num_tasks", "model", "group"}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitList[%d] = %q", i, got[i])
		}
	}
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
}

func TestRunNegativeAndExport(t *testing.T) {
	sched, node := writeTestTrace(t)
	cfg := baseConfig(sched, node)
	cfg.keyword = "status=failed"
	cfg.negative = true
	cfg.export = "markdown"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.export = "csv"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.export = "bogus"
	if err := run(cfg); err == nil {
		t.Error("bogus export format should error")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// Drain concurrently: the pipe's kernel buffer is small, so a reader
	// must run while fn writes or a large output deadlocks the test.
	type readResult struct {
		data []byte
		err  error
	}
	drained := make(chan readResult, 1)
	go func() {
		data, err := io.ReadAll(r)
		drained <- readResult{data, err}
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	res := <-drained
	if res.err != nil {
		t.Fatal(res.err)
	}
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", runErr, res.data)
	}
	return string(res.data)
}

func TestRunJSONFormat(t *testing.T) {
	sched, node := writeTestTrace(t)
	cfg := baseConfig(sched, node)
	cfg.keyword = "status=failed"
	cfg.format = "json"
	out := captureStdout(t, func() error { return run(cfg) })
	// JSON mode owns stdout: the whole output must be one decodable
	// object, no leading summary line.
	var decoded struct {
		Keyword string `json:"keyword"`
		Cause   []struct {
			Consequent []string `json:"consequent"`
			Lift       float64  `json:"lift"`
		} `json:"cause"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, out)
	}
	if decoded.Keyword != "status=failed" {
		t.Errorf("keyword = %q", decoded.Keyword)
	}
	if len(decoded.Cause) == 0 {
		t.Fatal("no cause rules in JSON output")
	}
	for _, r := range decoded.Cause {
		found := false
		for _, c := range r.Consequent {
			if c == "status=failed" {
				found = true
			}
		}
		if !found {
			t.Errorf("cause rule without keyword: %+v", r)
		}
	}

	cfg.format = "bogus"
	if err := run(cfg); err == nil {
		t.Error("bogus format should error")
	}
}

func TestRunDescribe(t *testing.T) {
	sched, node := writeTestTrace(t)
	cfg := baseConfig(sched, node)
	cfg.keyword = ""
	cfg.describe = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}
