package main

import (
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func writeTestTrace(t *testing.T) (sched, node string) {
	t.Helper()
	tr, err := trace.GeneratePAI(trace.Config{Jobs: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sched = filepath.Join(dir, "sched.csv")
	node = filepath.Join(dir, "node.csv")
	if err := tr.Scheduler.WriteCSVFile(sched); err != nil {
		t.Fatal(err)
	}
	if err := tr.Node.WriteCSVFile(node); err != nil {
		t.Fatal(err)
	}
	return sched, node
}

func baseConfig(sched, node string) config {
	return config{
		schedPath: sched, nodePath: node,
		pipeline: "pai", keyword: "sm_util=0%", rows: 5,
		minSupport: 0.05, minLift: 1.5, maxLen: 5, cLift: 1.5, cSupp: 1.5,
	}
}

func TestRunCanonicalPipeline(t *testing.T) {
	sched, node := writeTestTrace(t)
	if err := run(baseConfig(sched, node)); err != nil {
		t.Fatal(err)
	}
}

func TestRunAutoPipeline(t *testing.T) {
	sched, node := writeTestTrace(t)
	cfg := baseConfig(sched, node)
	cfg.pipeline = "auto"
	cfg.keyword = "status=failed"
	cfg.tiers = []string{"user", "group"}
	cfg.skips = []string{"job_id", "submit_s", "num_tasks", "model"}
	cfg.zeros = []string{"sm_util", "gmem_used_gb"}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	sched, node := writeTestTrace(t)
	cases := []func(*config){
		func(c *config) { c.schedPath = "" },
		func(c *config) { c.keyword = "" },
		func(c *config) { c.pipeline = "bogus" },
		func(c *config) { c.schedPath = "/nonexistent.csv" },
		func(c *config) { c.nodePath = "/nonexistent.csv" },
		func(c *config) { c.keyword = "no=such_item" },
	}
	for i, mutate := range cases {
		cfg := baseConfig(sched, node)
		mutate(&cfg)
		if err := run(cfg); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestRunWithoutNodeFile(t *testing.T) {
	sched, _ := writeTestTrace(t)
	cfg := baseConfig(sched, "")
	cfg.pipeline = "auto"
	cfg.keyword = "status=failed"
	cfg.tiers = []string{"user"}
	cfg.skips = []string{"job_id", "submit_s", "num_tasks", "model", "group"}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitList[%d] = %q", i, got[i])
		}
	}
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
}

func TestRunNegativeAndExport(t *testing.T) {
	sched, node := writeTestTrace(t)
	cfg := baseConfig(sched, node)
	cfg.keyword = "status=failed"
	cfg.negative = true
	cfg.export = "markdown"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.export = "csv"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.export = "bogus"
	if err := run(cfg); err == nil {
		t.Error("bogus export format should error")
	}
}

func TestRunDescribe(t *testing.T) {
	sched, node := writeTestTrace(t)
	cfg := baseConfig(sched, node)
	cfg.keyword = ""
	cfg.describe = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}
