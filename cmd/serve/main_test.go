package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

// TestMain doubles as the child process for the SIGTERM test: when
// SERVE_CHILD=1 the test binary runs a real serve daemon (the same run()
// main uses) instead of the test suite, so the parent can exercise actual
// signal delivery across a process boundary.
func TestMain(m *testing.M) {
	if os.Getenv("SERVE_CHILD") == "1" {
		childMain()
		return
	}
	os.Exit(m.Run())
}

func childMain() {
	o := baseOptions()
	o.spec = "generic" // strings pass through as field=value items
	o.bootstrap = 10
	o.mineInterval = time.Hour // only the drain mine may publish
	o.mineBatch = 1 << 20
	cfg, err := buildConfig(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	if err := run(os.Getenv("SERVE_ADDR"), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestSIGTERMGracefulDrain sends a real SIGTERM to a real serve process and
// requires a clean exit that drained the queue: every ingested event must
// be in the final snapshot the shutdown path prints.
func TestSIGTERMGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	// Reserve a port for the child. Closing the listener races with the
	// child's bind in principle, but the window is tiny and local.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SERVE_CHILD=1", "SERVE_ADDR="+addr)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never became healthy:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	var body bytes.Buffer
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&body, `{"node":"n%d","status":"ok"}`+"\n", i%4)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("child exited uncleanly: %v\n%s", err, out.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("child did not exit after SIGTERM\n%s", out.String())
	}
	// The drain mined one final snapshot over everything ingested: the
	// mine interval is an hour, so only the shutdown path can have
	// published it.
	if !strings.Contains(out.String(), "observed=40") {
		t.Errorf("final snapshot missing the drained events:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "draining ingest queue") {
		t.Errorf("shutdown path did not announce the drain:\n%s", out.String())
	}
}

func baseOptions() options {
	return options{
		spec: "pai", window: 1000,
		minSupport: 0.05, minLift: 1.5, maxLen: 5, cLift: 1.5, cSupp: 1.5,
		mineInterval: time.Second, mineBatch: 500, queue: 1024, bootstrap: 100,
		skips: []string{"job_id", "submit_s", "num_tasks"},
	}
}

func TestBuildConfigPAI(t *testing.T) {
	cfg, err := buildConfig(baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Spec.Numeric) == 0 || len(cfg.Spec.Tiers) == 0 {
		t.Errorf("PAI spec incomplete: %+v", cfg.Spec)
	}
	if cfg.WindowSize != 1000 || cfg.MineBatch != 500 {
		t.Errorf("sizing flags not applied: %+v", cfg)
	}
}

func TestBuildConfigMineWorkers(t *testing.T) {
	o := baseOptions()
	o.mineWorkers = 3
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 3 {
		t.Errorf("Workers = %d, want -mine-workers value 3", cfg.Workers)
	}
	o.mineWorkers = 0
	if cfg, _ = buildConfig(o); cfg.Workers != 0 {
		t.Errorf("Workers = %d, want 0 (all cores) by default", cfg.Workers)
	}
}

func TestBuildConfigIncremental(t *testing.T) {
	o := baseOptions()
	o.incremental = true
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Incremental {
		t.Error("Incremental not set from -incremental")
	}
	o.incremental = false
	if cfg, _ = buildConfig(o); cfg.Incremental {
		t.Error("Incremental on by default; -incremental must be opt-in")
	}
}

func TestBuildConfigGeneric(t *testing.T) {
	o := baseOptions()
	o.spec = "generic"
	o.numeric = []string{"gpu_util", "runtime_s"}
	o.zeros = []string{"gpu_util"}
	o.spikes = []string{"runtime_s"}
	o.tiers = []string{"user"}
	o.bools = []string{"retried"}
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Spec.Numeric) != 2 {
		t.Fatalf("numeric specs = %+v", cfg.Spec.Numeric)
	}
	for _, n := range cfg.Spec.Numeric {
		switch n.Field {
		case "gpu_util":
			if !n.ZeroSpecial || n.SpikeThreshold != 0 {
				t.Errorf("gpu_util spec = %+v", n)
			}
		case "runtime_s":
			if n.ZeroSpecial || n.SpikeThreshold == 0 {
				t.Errorf("runtime_s spec = %+v", n)
			}
		}
	}
	if len(cfg.Spec.Tiers) != 1 || cfg.Spec.Tiers[0].Field != "user" {
		t.Errorf("tiers = %+v", cfg.Spec.Tiers)
	}
}

func TestBuildConfigUnknownSpec(t *testing.T) {
	o := baseOptions()
	o.spec = "bogus"
	if _, err := buildConfig(o); err == nil {
		t.Error("unknown spec should error")
	}
}

// TestServeWiring drives the exact configuration main builds through one
// ingest + query cycle, covering the glue (spec flags -> server.Config ->
// handler) without binding a real port.
func TestServeWiring(t *testing.T) {
	o := baseOptions()
	o.spec = "generic"
	o.numeric = []string{"gpu_util"}
	o.tiers = []string{"user"}
	o.bootstrap = 20
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MineBatch = 20
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body bytes.Buffer
	for i := 0; i < 40; i++ {
		util := 90.0
		if i%2 == 0 {
			util = 5.0
		}
		line, _ := json.Marshal(map[string]any{"user": "u1", "gpu_util": util, "status": "ok"})
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot published")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBuildConfigDurabilityFlags(t *testing.T) {
	o := baseOptions()
	o.stateDir = "/var/lib/armine"
	o.checkpointEvery = 5
	o.keep = []string{"status=failed", "status=terminated"}
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StateDir != "/var/lib/armine" {
		t.Errorf("StateDir = %q", cfg.StateDir)
	}
	if cfg.CheckpointEvery != 5 {
		t.Errorf("CheckpointEvery = %d", cfg.CheckpointEvery)
	}
	if len(cfg.KeepItems) != 2 || cfg.KeepItems[0] != "status=failed" {
		t.Errorf("KeepItems = %v", cfg.KeepItems)
	}
}

func TestBuildConfigWALFlags(t *testing.T) {
	o := baseOptions()
	o.walDir = "/var/lib/armine/wal"
	o.fsync = "always"
	o.fsyncInterval = 250 * time.Millisecond
	o.mineTimeout = 30 * time.Second
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WALDir != "/var/lib/armine/wal" || cfg.Fsync != "always" {
		t.Errorf("WAL flags not applied: dir=%q fsync=%q", cfg.WALDir, cfg.Fsync)
	}
	if cfg.FsyncInterval != 250*time.Millisecond {
		t.Errorf("FsyncInterval = %v", cfg.FsyncInterval)
	}
	if cfg.MineTimeout != 30*time.Second {
		t.Errorf("MineTimeout = %v", cfg.MineTimeout)
	}
}

// TestKeepItemSurvivesPrevalenceDrop: in a failure-heavy window status=failed
// crosses the 80% running-prevalence ceiling and the online drop deletes the
// very keyword an operator is studying. -keep exempts it: with the flag the
// rule table carries high-support rules about the item; without it only the
// few pre-floor occurrences remain and no such rule can exist.
func TestKeepItemSurvivesPrevalenceDrop(t *testing.T) {
	const jobs = 400
	run := func(keep []string) []map[string]any {
		o := baseOptions()
		o.spec = "generic" // no declared fields: strings pass through as field=value
		o.minLift = 1.05   // an 87.5%-share consequent caps lift at ~1.14
		o.bootstrap = 10
		o.keep = keep
		cfg, err := buildConfig(o)
		if err != nil {
			t.Fatal(err)
		}
		cfg.MineBatch = jobs
		cfg.MineInterval = time.Hour
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		// 87.5% of jobs fail; node=n1 occurs only on failed jobs (37.5%
		// share), so n1 => failed holds with confidence 1 and lift 1/0.875.
		var body bytes.Buffer
		for i := 0; i < jobs; i++ {
			ev := map[string]any{"status": "failed", "node": "n2"}
			if i%8 == 0 {
				ev["status"] = "ok"
			} else if i%2 == 0 {
				ev["node"] = "n1"
			}
			line, _ := json.Marshal(ev)
			body.Write(line)
			body.WriteByte('\n')
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/x-ndjson", &body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if snap := s.Snapshot(); snap != nil && snap.View.Total == jobs {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("no snapshot over the full stream")
			}
			time.Sleep(5 * time.Millisecond)
		}
		resp, err = http.Get(ts.URL + "/v1/rules?limit=100000")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Rules []map[string]any `json:"rules"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Fatal(err)
		}
		return out.Rules
	}

	mentionsFailed := func(r map[string]any) bool {
		for _, side := range []string{"antecedent", "consequent"} {
			items, _ := r[side].([]any)
			for _, it := range items {
				if it == "status=failed" {
					return true
				}
			}
		}
		return false
	}

	// With -keep: the n1 => failed association survives at its true support.
	kept := run([]string{"status=failed"})
	found := false
	for _, r := range kept {
		if mentionsFailed(r) && r["support"].(float64) >= 0.3 {
			found = true
		}
	}
	if !found {
		t.Errorf("with -keep status=failed, no high-support rule mentions it (%d rules)", len(kept))
	}

	// Without -keep the item is dropped once prevalence tracking kicks in;
	// only the few early transactions can mention it, far below 0.3 support.
	control := run(nil)
	for _, r := range control {
		if mentionsFailed(r) && r["support"].(float64) >= 0.3 {
			t.Errorf("without -keep, high-support rule still mentions status=failed: %v", r)
		}
	}
}

// TestClusterWiring drives the sharded mode end to end through the same
// config path main uses: tenant-keyed ingest over HTTP, merged and
// per-tenant rule views, and the prometheus scrape surface.
func TestClusterWiring(t *testing.T) {
	o := baseOptions()
	o.spec = "generic"
	o.bootstrap = 1
	o.mineInterval = time.Hour // only the drain mine publishes
	o.mineBatch = 1 << 20
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxPrevalence = 1
	c, err := shard.New(shard.Config{Shards: 3, Shard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	var body bytes.Buffer
	for i := 0; i < 60; i++ {
		line, _ := json.Marshal(map[string]any{
			"tenant": fmt.Sprintf("t%d", i%5),
			"status": "ok",
			"color":  []string{"red", "blue"}[i%2],
		})
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/v1/rules")
	if err != nil {
		t.Fatal(err)
	}
	var merged struct {
		Shards    int `json:"shards"`
		WindowLen int `json:"window_len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&merged); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || merged.Shards != 3 || merged.WindowLen != 60 {
		t.Fatalf("merged rules: status %d body %+v", resp.StatusCode, merged)
	}

	resp, err = http.Get(ts.URL + "/v1/tenants/t0/rules")
	if err != nil {
		t.Fatal(err)
	}
	var tenant struct {
		Tenant string `json:"tenant"`
		Shard  *int   `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tenant); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tenant.Tenant != "t0" || tenant.Shard == nil {
		t.Fatalf("tenant view: %+v", tenant)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(scrape), "armine_cluster_shards 3") {
		t.Fatalf("scrape output missing shard gauge:\n%s", scrape)
	}
}
