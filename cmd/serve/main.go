// Command serve runs the online rule-mining service: a daemon that ingests
// job-completion events over HTTP, continuously re-mines a sliding window,
// and answers operator queries with pruned keyword rule tables and rule
// drift — the serving-side counterpart of the batch cmd/armine.
//
// Endpoints:
//
//	POST /v1/jobs        ingest NDJSON (default) or CSV (Content-Type: text/csv)
//	GET  /v1/rules       current rules; ?keyword=failed&kind=cause for analyses,
//	                     ?sort=lift|support|confidence, ?min_lift= / ?min_support=
//	                     floors, ?offset=/?limit= pagination; ETag + Cache-Control
//	GET  /v1/drift       rules appeared/vanished between the last two snapshots
//	GET  /v1/drift/watch SSE push of drift events on every publish (?mode=poll
//	                     for long-poll; resume via Last-Event-ID = snapshot seq)
//	GET  /healthz        liveness plus snapshot age; 503 once draining begins
//	GET  /metrics        ingest/mining counters as flat JSON
//
// Example against a generated trace:
//
//	tracegen -trace pai -jobs 20000 -out /tmp/t
//	serve -addr :8080 -state-dir /var/lib/armine &
//	# join scheduler+node rows into NDJSON with your tool of choice, or
//	# post the scheduler CSV directly:
//	curl -sS -X POST -H 'Content-Type: text/csv' \
//	     --data-binary @/tmp/t/pai_scheduler.csv localhost:8080/v1/jobs
//	curl -sS 'localhost:8080/v1/rules?keyword=failed&kind=cause'
//
// With -state-dir the daemon is restartable without losing fitted state:
// the mining loop checkpoints the bin edges, activity tiers, prevalence
// counts, item catalog and the sliding window to an atomically replaced
// file (every -checkpoint-every mines and again when SIGTERM drains the
// queue), and the next start restores from it — same window, same rules,
// no re-bootstrap. -keep exempts item names (e.g. status=failed) from the
// online prevalence drop so the keyword under study cannot be deleted by a
// failure-heavy window.
//
// With -wal-dir every accepted event is additionally framed into a
// write-ahead log before it is acknowledged, and a restart replays the WAL
// tail on top of the checkpoint — a kill -9 between checkpoints loses
// nothing (-fsync always) or at most the last sync interval (-fsync
// interval, the default). -mine-timeout arms a watchdog that abandons a
// hung re-mine and keeps serving the last good snapshot, marked stale,
// while /healthz reports the degraded state.
//
// With -incremental the mining loop maintains its FP-tree across mines —
// weighted inserts for arriving jobs, weighted decrements along evicted
// paths — so steady-state re-mine cost is proportional to the jobs that
// arrived since the last mine rather than the window size; rules are
// identical, and /metrics' mine_incremental_total / mine_full_rebuild_total
// show how often the rank-drift/fragmentation fallback rebuilds from
// scratch. -pprof-addr exposes net/http/pprof on a separate listener for
// profiling the mine loop in production.
//
// With -spec generic the encoder is derived from flags instead of the
// canonical PAI shape: -numeric columns are quartile-binned (-zero /
// -spike subsets get their special bins), -tier columns are
// activity-tiered, -bool columns parse as booleans in CSV bodies, and
// -skip columns are ignored.
//
// With -shards N (N > 1) the daemon becomes an in-process sharded
// multi-tenant deployment: events route to one of N independent shard
// miners by FNV-hashing the -tenant-field value (records without the field
// go to the reserved "default" tenant), each shard keeps its own window,
// encoder state and shard-<i> checkpoint/WAL subdirectories, and
// -tenant-quota caps accepted events per tenant per -quota-window. GET
// /v1/rules then serves the SON-merged global view — provably equal to
// mining the union window — and GET /v1/tenants/{id}/rules serves one
// tenant's shard view. /healthz and /metrics aggregate across shards;
// /metrics?format=prometheus emits per-tenant and per-shard counters in
// scrape format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, exposed only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	spec := flag.String("spec", "pai", "encoder spec: pai or generic")
	window := flag.Int("window", 5000, "sliding window size in jobs")
	minSupport := flag.Float64("min-support", 0.05, "minimum itemset support")
	minLift := flag.Float64("min-lift", 1.5, "minimum rule lift")
	maxLen := flag.Int("max-len", 5, "maximum itemset length")
	cLift := flag.Float64("c-lift", 1.5, "pruning lift slack C_lift")
	cSupp := flag.Float64("c-supp", 1.5, "pruning support slack C_supp")
	mineInterval := flag.Duration("mine-interval", 2*time.Second, "re-mine cadence")
	mineBatch := flag.Int("mine-batch", 1000, "re-mine after this many new jobs")
	mineWorkers := flag.Int("mine-workers", 0, "mining parallelism (0 = all cores, 1 = serial)")
	incremental := flag.Bool("incremental", false, "maintain the FP-tree across mines so steady-state mine cost tracks the ingest delta, not the window size (rules are identical; a rank-drift or fragmentation fallback rebuilds when needed)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof profiles (e.g. localhost:6060); empty disables")
	queue := flag.Int("queue", 8192, "ingest queue capacity (full queue => 429)")
	watchHistory := flag.Int("watch-history", 64, "drift events retained for /v1/drift/watch Last-Event-ID resume")
	bootstrap := flag.Int("bootstrap", 500, "jobs sampled before bin edges are fitted")
	stateDir := flag.String("state-dir", "", "directory for the durable checkpoint; empty disables checkpoint/restore")
	checkpointEvery := flag.Int("checkpoint-every", 1, "mines between checkpoints when -state-dir is set")
	walDir := flag.String("wal-dir", "", "directory for the write-ahead log of accepted events; empty disables the WAL")
	fsync := flag.String("fsync", "interval", "WAL durability: always (sync every append), interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "WAL sync cadence under -fsync interval")
	mineTimeout := flag.Duration("mine-timeout", 0, "abandon a mine running longer than this and serve the last snapshot as stale (0 disables)")
	keep := flag.String("keep", "", "comma-separated item names exempt from the prevalence drop (e.g. status=failed)")
	numeric := flag.String("numeric", "", "generic spec: comma-separated numeric fields to quartile-bin")
	zeros := flag.String("zero", "", "generic spec: numeric fields given a zero bin")
	spikes := flag.String("spike", "", "generic spec: numeric fields given a Std spike bin")
	tiers := flag.String("tier", "", "generic spec: fields to activity-tier")
	bools := flag.String("bool", "", "generic spec: fields parsed as booleans in CSV bodies")
	skips := flag.String("skip", "job_id,submit_s", "fields excluded from encoding")
	shards := flag.Int("shards", 1, "shard miner count; >1 serves a sharded multi-tenant deployment")
	tenantField := flag.String("tenant-field", "tenant", "event field carrying the tenant key in sharded mode")
	tenantQuota := flag.Int("tenant-quota", 0, "max accepted events per tenant per -quota-window; 0 disables quotas")
	quotaWindow := flag.Duration("quota-window", time.Minute, "tenant quota accounting window")
	flag.Parse()

	cfg, err := buildConfig(options{
		spec: *spec, window: *window,
		minSupport: *minSupport, minLift: *minLift, maxLen: *maxLen,
		cLift: *cLift, cSupp: *cSupp,
		mineInterval: *mineInterval, mineBatch: *mineBatch, mineWorkers: *mineWorkers,
		incremental: *incremental,
		queue:       *queue, bootstrap: *bootstrap, watchHistory: *watchHistory,
		stateDir: *stateDir, checkpointEvery: *checkpointEvery, keep: splitList(*keep),
		walDir: *walDir, fsync: *fsync, fsyncInterval: *fsyncInterval, mineTimeout: *mineTimeout,
		numeric: splitList(*numeric), zeros: splitList(*zeros), spikes: splitList(*spikes),
		tiers: splitList(*tiers), bools: splitList(*bools), skips: splitList(*skips),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener, never the
		// service address: importing net/http/pprof registers only on
		// http.DefaultServeMux, which the API handlers don't use.
		go func() {
			fmt.Printf("serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "serve: pprof listener:", err)
			}
		}()
	}
	// Any multi-tenant knob selects cluster mode: quotas need the tenant
	// router even with a single shard behind it.
	if *shards > 1 || *tenantQuota > 0 {
		err = runCluster(*addr, shard.Config{
			Shards:      *shards,
			TenantField: *tenantField,
			QuotaLimit:  *tenantQuota,
			QuotaWindow: *quotaWindow,
			Shard:       cfg,
		})
	} else {
		err = run(*addr, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

type options struct {
	spec                                 string
	window, maxLen, mineBatch            int
	queue, bootstrap, mineWorkers        int
	checkpointEvery, watchHistory        int
	incremental                          bool
	minSupport, minLift, cLift, cSupp    float64
	mineInterval, mineTimeout            time.Duration
	fsyncInterval                        time.Duration
	stateDir, walDir, fsync              string
	keep                                 []string
	numeric, zeros, spikes, tiers, bools []string
	skips                                []string
}

func buildConfig(o options) (server.Config, error) {
	cfg := server.Config{
		WindowSize:      o.window,
		MinSupport:      o.minSupport,
		MinLift:         o.minLift,
		MaxLen:          o.maxLen,
		CLift:           o.cLift,
		CSupp:           o.cSupp,
		Bootstrap:       o.bootstrap,
		MineInterval:    o.mineInterval,
		MineBatch:       o.mineBatch,
		QueueSize:       o.queue,
		WatchHistory:    o.watchHistory,
		Workers:         o.mineWorkers,
		Incremental:     o.incremental,
		StateDir:        o.stateDir,
		CheckpointEvery: o.checkpointEvery,
		KeepItems:       o.keep,
		WALDir:          o.walDir,
		Fsync:           o.fsync,
		FsyncInterval:   o.fsyncInterval,
		MineTimeout:     o.mineTimeout,
	}
	switch o.spec {
	case "pai":
		cfg.Spec = server.PAISpec()
		if len(o.skips) > 0 {
			cfg.Spec.Skip = o.skips
		}
	case "generic":
		cfg.Spec = genericSpec(o)
	default:
		return server.Config{}, fmt.Errorf("unknown spec %q (want pai or generic)", o.spec)
	}
	return cfg, nil
}

// genericSpec derives an encoder spec from flags, mirroring armine's auto
// pipeline: quartile bins everywhere, zero/spike bins and tiers where asked.
func genericSpec(o options) server.Spec {
	zero := make(map[string]bool, len(o.zeros))
	for _, z := range o.zeros {
		zero[z] = true
	}
	spike := make(map[string]bool, len(o.spikes))
	for _, s := range o.spikes {
		spike[s] = true
	}
	spec := server.Spec{Bools: o.bools, Skip: o.skips}
	for _, f := range o.numeric {
		n := server.NumericSpec{Field: f, ZeroSpecial: zero[f]}
		if spike[f] {
			n.SpikeThreshold = 0.3
		}
		spec.Numeric = append(spec.Numeric, n)
	}
	for _, t := range o.tiers {
		spec.Tiers = append(spec.Tiers, server.TierSpec{Field: t})
	}
	return spec
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runCluster is run for sharded mode: same listen/drain lifecycle, with the
// cluster fanning the shutdown out to every shard miner.
func runCluster(addr string, ccfg shard.Config) error {
	c, err := shard.New(ccfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("serve: listening on %s (%d shards, tenant field %q)\n", addr, c.Shards(), ccfg.TenantField)
	if ccfg.QuotaLimit > 0 {
		fmt.Printf("serve: tenant quota %d events per %s\n", ccfg.QuotaLimit, ccfg.QuotaWindow)
	}
	if ccfg.Shard.StateDir != "" {
		fmt.Printf("serve: durable per-shard state under %s\n", ccfg.Shard.StateDir)
	}
	if ccfg.Shard.WALDir != "" {
		fmt.Printf("serve: per-shard write-ahead logs under %s (fsync=%s)\n", ccfg.Shard.WALDir, ccfg.Shard.Fsync)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("serve: shutting down, draining every shard")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	// Drain before Shutdown: stopping the cluster closes the watch hubs,
	// which ends the open /v1/drift/watch streams — otherwise Shutdown
	// would wait its whole timeout on them.
	if err := c.Stop(shutdownCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if snap, _ := c.Merged(); snap != nil {
		fmt.Printf("serve: final merged snapshot seq=%d rules=%d window=%d observed=%d\n",
			snap.Seq, len(snap.View.Rules), snap.View.WindowLen, snap.View.Total)
	}
	return nil
}

func run(addr string, cfg server.Config) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("serve: listening on %s (window %d, mine every %s or %d jobs)\n",
		addr, cfg.WindowSize, cfg.MineInterval, cfg.MineBatch)
	if cfg.StateDir != "" {
		fmt.Printf("serve: durable state in %s (checkpoint every %d mines and at drain)\n",
			cfg.StateDir, cfg.CheckpointEvery)
	}
	if cfg.WALDir != "" {
		fmt.Printf("serve: write-ahead log in %s (fsync=%s)\n", cfg.WALDir, cfg.Fsync)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("serve: shutting down, draining ingest queue")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	// Drain before Shutdown: Stop closes the watch hub, ending the open
	// /v1/drift/watch streams — otherwise Shutdown would wait its whole
	// timeout on them.
	if err := s.Stop(shutdownCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if snap := s.Snapshot(); snap != nil {
		fmt.Printf("serve: final snapshot seq=%d rules=%d window=%d observed=%d\n",
			snap.Seq, len(snap.View.Rules), snap.View.WindowLen, snap.View.Total)
	}
	return nil
}
