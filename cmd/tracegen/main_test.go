package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestRunGeneratesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("pai", 500, 1, dir); err != nil {
		t.Fatal(err)
	}
	sched, err := dataset.ReadCSVFile(filepath.Join(dir, "pai_scheduler.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumRows() != 500 {
		t.Errorf("rows = %d", sched.NumRows())
	}
	node, err := dataset.ReadCSVFile(filepath.Join(dir, "pai_node.csv"))
	if err != nil {
		t.Fatal(err)
	}
	joined, err := sched.InnerJoin(node, "job_id", "job_id")
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 500 {
		t.Errorf("join lost rows: %d", joined.NumRows())
	}
}

func TestRunAll(t *testing.T) {
	dir := t.TempDir()
	if err := run("all", 200, 2, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pai", "supercloud", "philly"} {
		for _, suffix := range []string{"_scheduler.csv", "_node.csv"} {
			if _, err := os.Stat(filepath.Join(dir, name+suffix)); err != nil {
				t.Errorf("missing %s%s: %v", name, suffix, err)
			}
		}
	}
}

func TestRunUnknownTrace(t *testing.T) {
	if err := run("nope", 10, 1, t.TempDir()); err == nil {
		t.Error("unknown trace should error")
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run("pai", 10, 1, string([]byte{0})); err == nil {
		t.Error("invalid directory should error")
	}
}
