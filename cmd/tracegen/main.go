// Command tracegen generates the synthetic PAI, SuperCloud and Philly
// traces and writes them in the raw two-file CSV layout (a scheduler-level
// file and a node-level measurement file per trace, joined on job_id).
//
// Usage:
//
//	tracegen -trace all -jobs 20000 -seed 42 -out ./traces
//
// The produced files are <out>/<trace>_scheduler.csv and
// <out>/<trace>_node.csv, consumable by cmd/armine.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

func main() {
	which := flag.String("trace", "all", "trace to generate: pai, supercloud, philly or all")
	jobs := flag.Int("jobs", 0, "number of jobs (0 = trace default scale)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if err := run(*which, *jobs, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(which string, jobs int, seed int64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	cfg := trace.Config{Jobs: jobs, Seed: seed}
	generators := map[string]func(trace.Config) (*trace.Trace, error){
		"pai":        trace.GeneratePAI,
		"supercloud": trace.GenerateSuperCloud,
		"philly":     trace.GeneratePhilly,
	}
	names := []string{"pai", "supercloud", "philly"}
	if which != "all" {
		if _, ok := generators[which]; !ok {
			return fmt.Errorf("unknown trace %q", which)
		}
		names = []string{which}
	}
	for _, name := range names {
		tr, err := generators[name](cfg)
		if err != nil {
			return err
		}
		sched := filepath.Join(out, name+"_scheduler.csv")
		node := filepath.Join(out, name+"_node.csv")
		if err := tr.Scheduler.WriteCSVFile(sched); err != nil {
			return err
		}
		if err := tr.Node.WriteCSVFile(node); err != nil {
			return err
		}
		fmt.Printf("%s: %d jobs -> %s, %s\n", name, tr.Scheduler.NumRows(), sched, node)
	}
	return nil
}
