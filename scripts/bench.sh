#!/usr/bin/env bash
# bench.sh — run the mining hot-path benchmarks and record the numbers in
# BENCH_mining.json at the repo root, then the serving read-path
# benchmarks into BENCH_serving.json.
#
# Usage:
#   scripts/bench.sh                 # refresh the "current" numbers
#   scripts/bench.sh --set-baseline  # also copy them into "baseline"
#
# The baseline section is meant to be captured once on the commit you are
# comparing against (e.g. before a performance change) and left alone
# afterwards: a plain run preserves whatever baseline the file already
# holds, so the JSON always shows before/after side by side.
#
# BENCH_serving.json needs no cross-commit baseline: the pre-index linear
# read path is kept in-tree as the equivalence oracle, so every run
# measures before (Linear) and after (Indexed) on the same snapshot and
# reports the speedup directly.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_mining.json
BENCHTIME=${BENCHTIME:-1s}
SET_BASELINE=0
[ "${1:-}" = "--set-baseline" ] && SET_BASELINE=1

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

run() { # run <pkg> <bench regexp>
    echo ">> go test -run=NONE -bench '$2' -benchtime=$BENCHTIME -benchmem $1" >&2
    go test -run=NONE -bench "$2" -benchtime="$BENCHTIME" -benchmem "$1" |
        awk -v pkg="$1" '/^Benchmark/ && /ns\/op/ {
            name=$1; sub(/-[0-9]+$/, "", name)
            ns=""; bytes=""; allocs=""
            # Benchmarks may report custom metrics (e.g. jobs/op), so find
            # each unit by name instead of assuming fixed columns.
            for (i = 3; i <= NF; i++) {
                if ($i == "ns/op") ns = $(i-1)
                else if ($i == "B/op") bytes = $(i-1)
                else if ($i == "allocs/op") allocs = $(i-1)
            }
            printf "%s\t%s\t%s\t%s\t%s\t%s\n", pkg, name, $2, ns, bytes, allocs
        }' >>"$raw"
}

# FP-Growth engine: initial tree construction and mining across densities,
# thresholds and worker counts (20k-transaction class databases).
run ./internal/fpgrowth 'BenchmarkBuildInitial|BenchmarkMineByDensity|BenchmarkMineByThreshold|BenchmarkMineParallelism'
# Windowed-delta serving pattern: 20k window advancing 200 txns per tick,
# full tree rebuild per mine vs the maintained incremental tree.
run ./internal/fpgrowth 'BenchmarkIncrementalMine'
# Rule generation over the mined lattice.
run ./internal/rules 'BenchmarkGenerate'
# End-to-end: 20k-job PAI trace through the miner, and the HTTP server
# ingest+mine loop.
run . 'BenchmarkMinerFPGrowth$|BenchmarkMinerFPGrowthSequential$|BenchmarkServerIngestMine$'

current=$(jq -Rn '
  [inputs | split("\t") |
   {package: .[0], name: .[1], iterations: (.[2] | tonumber),
    ns_per_op: (.[3] | tonumber), bytes_per_op: (.[4] | tonumber),
    allocs_per_op: (.[5] | tonumber)}]' <"$raw")

baseline=null
if [ "$SET_BASELINE" = 1 ]; then
    baseline=$current
elif [ -f "$OUT" ]; then
    baseline=$(jq '.baseline' "$OUT")
fi

jq -n --argjson current "$current" --argjson baseline "$baseline" \
    --arg go "$(go version | awk '{print $3}')" \
    --arg benchtime "$BENCHTIME" '
  {generated_by: "scripts/bench.sh", go: $go, benchtime: $benchtime,
   note: "ns/B/allocs are per op; baseline is the pre-optimization capture, current the latest run",
   baseline: $baseline, current: $current}' >"$OUT"
echo "wrote $OUT" >&2

# Serving read path: repeated /v1/rules queries against one 20k-job
# snapshot, the indexed handlers against the in-tree linear oracle.
SERVING_OUT=BENCH_serving.json
: >"$raw"
run ./internal/server 'BenchmarkServing'

jq -Rn --arg go "$(go version | awk '{print $3}')" --arg benchtime "$BENCHTIME" '
  [inputs | split("\t") |
   {name: .[1], iterations: (.[2] | tonumber),
    ns_per_op: (.[3] | tonumber), bytes_per_op: (.[4] | tonumber),
    allocs_per_op: (.[5] | tonumber)}]
  | map({key: .name, value: .}) | from_entries as $b
  | {generated_by: "scripts/bench.sh", go: $go, benchtime: $benchtime,
     note: "before is the pre-index linear scan (kept as the equivalence oracle), after the indexed read path, on the same 20k-job snapshot",
     results: [
       {query: "repeated ?keyword= analysis",
        before: $b.BenchmarkServingKeywordLinear,
        after: $b.BenchmarkServingKeywordIndexed},
       {query: "?sort=support&min_lift= page",
        before: $b.BenchmarkServingSortLinear,
        after: $b.BenchmarkServingSortIndexed}
     ] | map(. + {speedup: ((.before.ns_per_op / .after.ns_per_op) * 10 | round / 10)})}
  ' <"$raw" >"$SERVING_OUT"
echo "wrote $SERVING_OUT" >&2
