#!/usr/bin/env bash
# bench_gate.sh — CI perf gate: re-run the headline benchmarks and fail if
# any regresses more than THRESHOLD_PCT% in ns/op against the numbers
# checked in at the repo root (BENCH_mining.json "current", the
# BENCH_serving.json indexed "after" results).
#
# Usage:
#   scripts/bench_gate.sh                 # gate at the default +25%
#   THRESHOLD_PCT=10 scripts/bench_gate.sh
#
# Each benchmark runs COUNT times and the gate takes the fastest run: the
# checked-in numbers are a floor captured on a quiet machine, so noise can
# only make a fresh run slower, and min-of-N strips most of it. The
# threshold absorbs the rest — the gate exists to catch real hot-path
# regressions (an accidental O(n^2), a lost index), not 5% scheduler
# jitter. Refresh the checked-in numbers with scripts/bench.sh when a
# deliberate change moves them.
set -uo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT=${THRESHOLD_PCT:-25}
BENCHTIME=${BENCHTIME:-1s}
COUNT=${COUNT:-3}

fail=0

# fresh_ns <pkg> <bench regexp> <name> — min ns/op over COUNT runs.
fresh_ns() {
    go test -run=NONE -bench "$2" -benchtime="$BENCHTIME" -count="$COUNT" "$1" |
        awk -v want="$3" '/^Benchmark/ && /ns\/op/ {
            n=$1; sub(/-[0-9]+$/, "", n)
            if (n == want) for (i = 3; i <= NF; i++) if ($i == "ns/op") print $(i-1)
        }' | sort -n | head -1
}

# gate <pkg> <bench regexp> <name> <checked-in ns/op>
gate() {
    local pkg=$1 re=$2 name=$3 base=$4 fresh allowed
    if [ -z "$base" ] || [ "$base" = "null" ]; then
        echo "SKIP $name: no checked-in baseline"
        return
    fi
    fresh=$(fresh_ns "$pkg" "$re" "$name")
    if [ -z "$fresh" ]; then
        echo "FAIL $name: benchmark produced no ns/op (renamed or broken?)"
        fail=1
        return
    fi
    allowed=$(awk -v b="$base" -v t="$THRESHOLD_PCT" 'BEGIN{printf "%.0f", b * (100 + t) / 100}')
    if awk -v f="$fresh" -v a="$allowed" 'BEGIN{exit !(f > a)}'; then
        echo "FAIL $name: $fresh ns/op vs checked-in $base (limit $allowed, +$THRESHOLD_PCT%)"
        fail=1
    else
        echo "ok   $name: $fresh ns/op vs checked-in $base (limit $allowed)"
    fi
}

mining_ns() { jq -r --arg n "$1" '.current[] | select(.name == $n) | .ns_per_op' BENCH_mining.json; }
serving_ns() { jq -r --arg n "$1" '.results[].after | select(.name == $n) | .ns_per_op' BENCH_serving.json; }

# The headline set: the windowed-delta incremental mine (the steady-state
# serving cost), the end-to-end PAI miner, and both indexed read paths.
gate ./internal/fpgrowth 'BenchmarkIncrementalMine/incremental$' \
    'BenchmarkIncrementalMine/incremental' "$(mining_ns BenchmarkIncrementalMine/incremental)"
gate . 'BenchmarkMinerFPGrowth$' \
    'BenchmarkMinerFPGrowth' "$(mining_ns BenchmarkMinerFPGrowth)"
gate ./internal/server 'BenchmarkServingKeywordIndexed$' \
    'BenchmarkServingKeywordIndexed' "$(serving_ns BenchmarkServingKeywordIndexed)"
gate ./internal/server 'BenchmarkServingSortIndexed$' \
    'BenchmarkServingSortIndexed' "$(serving_ns BenchmarkServingSortIndexed)"

if [ "$fail" != 0 ]; then
    echo "bench gate: headline benchmark regressed beyond +$THRESHOLD_PCT% ns/op" >&2
    exit 1
fi
echo "bench gate: all headline benchmarks within +$THRESHOLD_PCT% of checked-in numbers"
