package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// The canonical workflow: frame → pipeline → mine → keyword analysis.
func Example() {
	// Six jobs; zero-GPU-utilization jobs come from the "heavy" user.
	frame, err := repro.NewFrame(
		repro.NewStringColumn("user", []string{"heavy", "heavy", "heavy", "a", "b", "c"}),
		repro.NewFloatColumn("gpu_util", []float64{0, 0, 0, 60, 70, 80}),
	)
	if err != nil {
		log.Fatal(err)
	}
	pipe := repro.NewPipeline()
	pipe.Features = []repro.FeatureSpec{{Column: "gpu_util", ZeroSpecial: true}}
	pipe.Tiers = []repro.TierSpec{{Column: "user", Out: "user_tier"}}
	pipe.Opts.MinSupport = 0.3 // tiny toy database

	res, err := pipe.Mine(frame)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := res.Analyze("gpu_util=0%")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.FormatRule(analysis.Cause[0]))
	// Output:
	// {user_tier=frequent} => {gpu_util=0%}  supp=0.50 conf=1.00 lift=2.00
}

// Mining a transaction database directly, without a frame.
func ExampleMineSON() {
	db := repro.NewTransactionDB(nil)
	for i := 0; i < 8; i++ {
		db.AddNames("bread", "butter")
	}
	for i := 0; i < 2; i++ {
		db.AddNames("milk")
	}
	frequent := repro.MineSON(db, repro.SONOptions{MinCount: 5, Partitions: 2})
	rules := repro.GenerateRules(frequent, db.Len(), repro.RuleOptions{MinLift: 1.1})
	for _, r := range rules {
		fmt.Println(r.Format(db.Catalog()))
	}
	// Output:
	// {bread} => {butter}  supp=0.80 conf=1.00 lift=1.25
	// {butter} => {bread}  supp=0.80 conf=1.00 lift=1.25
}

// Protective rules: what makes the keyword unlikely.
func ExampleGenerateNegativeRules() {
	db := repro.NewTransactionDB(nil)
	for i := 0; i < 40; i++ {
		db.AddNames("pool=a") // pool a never fails
	}
	for i := 0; i < 30; i++ {
		db.AddNames("pool=b", "failed")
	}
	for i := 0; i < 30; i++ {
		db.AddNames("pool=b")
	}
	frequent := repro.MineSON(db, repro.SONOptions{MinCount: 5})
	failed, _ := db.Catalog().Lookup("failed")
	neg := repro.GenerateNegativeRules(frequent, db.Len(), 5, failed, repro.NegativeOptions{})
	fmt.Printf("{%s} => NOT failed (conf >= %.2f)\n",
		db.Catalog().Names(neg[0].Antecedent)[0], neg[0].Confidence)
	// Output:
	// {pool=a} => NOT failed (conf >= 0.90)
}
