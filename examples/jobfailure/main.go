// Job failure case study (paper Sec. IV-C): run the failure-keyword
// analysis across all three traces — reproducing the structure of Tables
// V, VI and VII — and show how the same portable workflow yields
// system-specific insights.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	type study struct {
		name     string
		generate func(repro.TraceConfig) (*repro.Trace, error)
		pipeline func() *repro.Pipeline
	}
	studies := []study{
		{"PAI", repro.GeneratePAI, repro.NewPAIPipeline},
		{"SuperCloud", repro.GenerateSuperCloud, repro.NewSuperCloudPipeline},
		{"Philly", repro.GeneratePhilly, repro.NewPhillyPipeline},
	}

	for _, s := range studies {
		tr, err := s.generate(repro.TraceConfig{Jobs: 12000, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		joined, err := tr.Join()
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.pipeline().Mine(joined)
		if err != nil {
			log.Fatal(err)
		}
		analysis, err := res.Analyze(repro.KeywordFailed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s ====\n", s.name)
		fmt.Print(repro.FormatTable(analysis, 6))
		fmt.Println()
	}

	// Trace-specific extra: SuperCloud's new users tend to kill their own
	// jobs (paper Table VIII, rule CIR1).
	sc, err := repro.GenerateSuperCloud(repro.TraceConfig{Jobs: 12000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	joined, err := sc.Join()
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.NewSuperCloudPipeline().Mine(joined)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := res.Analyze(repro.KeywordKilled)
	if err != nil {
		log.Fatal(err)
	}
	if rule, ok := repro.FindRule(analysis.Cause, []string{"user_tier=new"}, []string{repro.KeywordKilled}); ok {
		fmt.Println("SuperCloud CIR1: new users kill their jobs")
		fmt.Println("  " + repro.FormatRule(rule))
	}
}
