// Streaming drift detection: an operator keeps a sliding window over the
// live job feed and gets alerted when a *new* association involving job
// failure appears — here, a faulty driver rollout that makes a node pool
// start failing its jobs. The window miner re-mines snapshots and the diff
// surfaces exactly the new rule.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	miner, err := repro.NewStreamMiner(nil, repro.StreamConfig{
		WindowSize: 2000,
		MinSupport: 0.05,
		MinLift:    1.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))

	healthyJob := func() []string {
		pool := fmt.Sprintf("pool=%c", 'a'+rune(r.Intn(4)))
		switch {
		case r.Float64() < 0.5:
			return []string{pool, "kind=train", "gpu=busy", "status=ok"}
		case r.Float64() < 0.7:
			return []string{pool, "kind=infer", "gpu=idle", "status=ok"}
		default:
			return []string{pool, "kind=debug", "gpu=idle", "status=killed"}
		}
	}

	// Phase 1: normal operation fills the window.
	for i := 0; i < 2000; i++ {
		miner.ObserveNames(healthyJob()...)
	}
	before := miner.Snapshot()
	fmt.Printf("healthy window: %d rules\n", len(before))

	// Phase 2: pool-c receives a bad driver; its jobs start failing.
	for i := 0; i < 2000; i++ {
		if r.Float64() < 0.25 {
			miner.ObserveNames("pool=c", "driver=v2", "kind=train", "gpu=idle", "status=failed")
		} else {
			miner.ObserveNames(healthyJob()...)
		}
	}
	after := miner.Snapshot()
	fmt.Printf("post-rollout window: %d rules\n\n", len(after))

	delta := repro.DiffSnapshots(before, after)
	fmt.Printf("rule-set similarity (Jaccard): %.2f\n", delta.Jaccard)
	fmt.Printf("new rules: %d, vanished rules: %d\n\n", len(delta.Appeared), len(delta.Vanished))

	fmt.Println("new failure-related rules (the alert an operator would get):")
	failed, ok := miner.Catalog().Lookup("status=failed")
	if !ok {
		log.Fatal("no failed item observed")
	}
	shown := 0
	for _, rule := range delta.Appeared {
		if !rule.Antecedent.Contains(failed) && !rule.Consequent.Contains(failed) {
			continue
		}
		fmt.Println("  " + rule.Format(miner.Catalog()))
		shown++
		if shown == 5 {
			break
		}
	}
}
