// Custom trace schema: the workflow is not tied to the three case-study
// traces. This example builds a frame for a hypothetical batch cluster with
// its own metrics (I/O wait, checkpoint sizes, preemptions), declares a
// custom pipeline — zero bins, spike bins, activity tiers and categorical
// aggregation — and mines why jobs get preempted. It also round-trips the
// trace through CSV to show the file-based path.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	frame, err := buildTrace(10000)
	if err != nil {
		log.Fatal(err)
	}

	// Round trip through CSV: what a real deployment would load.
	dir, err := os.MkdirTemp("", "custommetrics")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "batch_trace.csv")
	if err := frame.WriteCSVFile(path); err != nil {
		log.Fatal(err)
	}
	frame, err = repro.ReadCSVFile(path)
	if err != nil {
		log.Fatal(err)
	}

	pipe := repro.NewPipeline()
	pipe.Features = []repro.FeatureSpec{
		{Column: "io_wait_pct", ZeroSpecial: true},
		{Column: "ckpt_gb", SpikeThreshold: 0.3, SpikeLabel: "Default"},
		{Column: "walltime_h"},
	}
	pipe.Tiers = []repro.TierSpec{{Column: "project", Out: "project_tier"}}
	pipe.Maps = []repro.MapSpec{{
		Column: "app", Out: "app_family",
		Groups: map[string]string{
			"lammps": "MD", "gromacs": "MD", "namd": "MD",
			"wrf": "climate", "cesm": "climate",
		},
		Fallback: "other",
	}}
	pipe.Skip = []string{"job_id"}

	res, err := pipe.Mine(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom trace: %d jobs, %d itemsets, %d rules\n\n",
		res.NumTransactions, len(res.Frequent), len(res.Rules()))

	analysis, err := res.Analyze("preempted")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Why do jobs get preempted on this cluster?")
	fmt.Print(repro.FormatTable(analysis, 6))
}

// buildTrace synthesizes the custom cluster's jobs: MD jobs from the "hot"
// project checkpoint with the default size, wait heavily on I/O and get
// preempted often — the planted association the miner should surface.
func buildTrace(n int) (*repro.Frame, error) {
	r := rand.New(rand.NewSource(3))
	ids := make([]string, n)
	projects := make([]string, n)
	apps := make([]string, n)
	ioWait := make([]float64, n)
	ckpt := make([]float64, n)
	wall := make([]float64, n)
	preempted := make([]bool, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("job-%05d", i)
		switch {
		case r.Float64() < 0.3: // the hot MD project
			projects[i] = "proj-molecular"
			apps[i] = []string{"lammps", "gromacs", "namd"}[r.Intn(3)]
			ioWait[i] = 20 + 40*r.Float64()
			ckpt[i] = 50 // default checkpoint size
			wall[i] = 2 + 10*r.Float64()
			preempted[i] = r.Float64() < 0.6
		case r.Float64() < 0.4: // climate jobs: long, I/O-light
			projects[i] = fmt.Sprintf("proj-climate-%d", r.Intn(3))
			apps[i] = []string{"wrf", "cesm"}[r.Intn(2)]
			ioWait[i] = 0
			ckpt[i] = 5 + 200*r.Float64()
			wall[i] = 24 + 100*r.Float64()
			preempted[i] = r.Float64() < 0.1
		default: // everything else
			projects[i] = fmt.Sprintf("proj-%03d", r.Intn(60))
			apps[i] = []string{"python", "matlab", "custom"}[r.Intn(3)]
			ioWait[i] = 15 * r.Float64()
			ckpt[i] = 1 + 20*r.Float64()
			wall[i] = 0.5 + 8*r.Float64()
			preempted[i] = r.Float64() < 0.12
		}
	}
	return repro.NewFrame(
		repro.NewStringColumn("job_id", ids),
		repro.NewStringColumn("project", projects),
		repro.NewStringColumn("app", apps),
		repro.NewFloatColumn("io_wait_pct", ioWait),
		repro.NewFloatColumn("ckpt_gb", ckpt),
		repro.NewFloatColumn("walltime_h", wall),
		repro.NewBoolColumn("preempted", preempted),
	)
}
