// Quickstart: association rule mining on the classic market-basket example
// using the public API. Transactions are rows of a frame; each product is a
// bool presence column. The same workflow scales from this toy to the
// 85k-job cluster traces.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Five shopping transactions over five products.
	frame, err := repro.NewFrame(
		repro.NewBoolColumn("bread", []bool{true, true, false, true, true}),
		repro.NewBoolColumn("milk", []bool{true, false, true, true, true}),
		repro.NewBoolColumn("diapers", []bool{false, true, true, true, true}),
		repro.NewBoolColumn("beer", []bool{false, true, true, true, false}),
		repro.NewBoolColumn("cola", []bool{false, false, true, false, true}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// An empty pipeline: no preprocessing needed, the columns are already
	// nominal. Thresholds relax below the paper defaults because five
	// transactions cannot support a 5% granularity.
	pipe := repro.NewPipeline()
	pipe.Opts.MinSupport = 0.4
	pipe.Opts.MinLift = 1.05

	res, err := pipe.Mine(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d transactions -> %d frequent itemsets, %d rules\n\n",
		res.NumTransactions, len(res.Frequent), len(res.Rules()))

	// What goes with beer? Cause rules answer "what predicts beer in the
	// basket"; characteristic rules answer "what else beer buyers take".
	analysis, err := res.Analyze("beer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.FormatTable(analysis, 5))
}
