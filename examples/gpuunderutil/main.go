// GPU underutilization case study (paper Sec. IV-B): generate the synthetic
// PAI trace, run the canonical pipeline, and study why jobs that requested a
// GPU show 0% SM utilization — reproducing the structure of Table II.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A scaled-down PAI trace (the full default is 85k jobs).
	tr, err := repro.GeneratePAI(repro.TraceConfig{Jobs: 20000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Merge the scheduler file with the node-level measurements — the
	// workflow's first preprocessing step.
	joined, err := tr.Join()
	if err != nil {
		log.Fatal(err)
	}

	// The canonical PAI pipeline: Std-spike bins on requests, zero bins
	// on SM utilization and GPU memory, user/group activity tiers.
	pipe := repro.NewPAIPipeline()
	res, err := pipe.Mine(joined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAI: %d jobs, %d frequent itemsets, %d rules\n\n",
		res.NumTransactions, len(res.Frequent), len(res.Rules()))

	analysis, err := res.Analyze(repro.KeywordZeroSM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Why do jobs never touch the GPU, and what else is true of them?")
	fmt.Print(repro.FormatTable(analysis, 8))

	// Locate the paper's headline finding: a minimal GPU request predicts
	// zero utilization (Table II, C1).
	if rule, ok := repro.FindRule(analysis.Cause, []string{"gpu_request=Bin1"}, []string{repro.KeywordZeroSM}); ok {
		fmt.Println("\nPaper Table II C1 rediscovered:")
		fmt.Println("  " + repro.FormatRule(rule))
	}
}
