package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// TestPublicAPIWorkflow drives the whole library through the facade only:
// build a frame, declare a pipeline, mine, analyze, render.
func TestPublicAPIWorkflow(t *testing.T) {
	n := 400
	users := make([]string, n)
	util := make([]float64, n)
	failed := make([]bool, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			users[i] = "heavy"
			util[i] = 0
			failed[i] = true
		} else {
			users[i] = "u" + string(rune('a'+i%17))
			util[i] = float64(5 + i%90)
		}
	}
	frame, err := repro.NewFrame(
		repro.NewStringColumn("user", users),
		repro.NewFloatColumn("gpu_util", util),
		repro.NewBoolColumn("failed", failed),
	)
	if err != nil {
		t.Fatal(err)
	}
	pipe := repro.NewPipeline()
	pipe.Features = []repro.FeatureSpec{{Column: "gpu_util", ZeroSpecial: true}}
	pipe.Tiers = []repro.TierSpec{{Column: "user", Out: "user_tier"}}

	res, err := pipe.Mine(frame)
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.Analyze("gpu_util=0%")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cause) == 0 {
		t.Fatal("no cause rules")
	}
	if _, ok := repro.FindRule(a.Characteristic, []string{"gpu_util=0%"}, []string{"failed"}); !ok {
		t.Error("planted association not found through facade")
	}
	out := repro.FormatTable(a, 5)
	if !strings.Contains(out, "gpu_util=0%") {
		t.Errorf("rendering broken:\n%s", out)
	}
}

func TestPublicAPICSV(t *testing.T) {
	frame, err := repro.ReadCSV(strings.NewReader("a,b\nx,1\ny,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumRows() != 2 {
		t.Errorf("rows = %d", frame.NumRows())
	}
}

func TestPublicAPITraceGenerators(t *testing.T) {
	for name, gen := range map[string]func(repro.TraceConfig) (*repro.Trace, error){
		"pai": repro.GeneratePAI, "supercloud": repro.GenerateSuperCloud, "philly": repro.GeneratePhilly,
	} {
		tr, err := gen(repro.TraceConfig{Jobs: 300, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		joined, err := tr.Join()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if joined.NumRows() != 300 {
			t.Errorf("%s: rows = %d", name, joined.NumRows())
		}
	}
}

func TestPublicAPICanonicalPipelines(t *testing.T) {
	tr, err := repro.GeneratePhilly(repro.TraceConfig{Jobs: 2500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := tr.Join()
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.NewPhillyPipeline().Mine(joined)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Analyze(repro.KeywordFailed); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRawMining(t *testing.T) {
	db := repro.NewTransactionDB(nil)
	for i := 0; i < 50; i++ {
		db.AddNames("a", "b")
	}
	for i := 0; i < 50; i++ {
		db.AddNames("c")
	}
	fs := repro.MineSON(db, repro.SONOptions{MinCount: 10, Partitions: 4})
	if len(fs) != 4 { // {a}, {b}, {c}, {a,b}
		t.Errorf("frequent itemsets = %d, want 4", len(fs))
	}
	rs := repro.GenerateRules(fs, db.Len(), repro.RuleOptions{MinLift: 1.2})
	if len(rs) != 2 { // a=>b and b=>a
		t.Errorf("rules = %d, want 2", len(rs))
	}
	for _, r := range rs {
		if r.Cosine() < 0.99 {
			t.Errorf("perfectly correlated rule cosine = %v", r.Cosine())
		}
	}
}

func TestPublicAPIStreamAndClassifier(t *testing.T) {
	m, err := repro.NewStreamMiner(nil, repro.StreamConfig{WindowSize: 100, MinLift: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			m.ObserveNames("x", "y")
		} else {
			m.ObserveNames("z")
		}
	}
	snap := m.Snapshot()
	if len(snap) == 0 {
		t.Fatal("stream snapshot empty")
	}
	d := repro.DiffSnapshots(snap, snap)
	if d.Jaccard != 1 {
		t.Errorf("self-diff Jaccard = %v", d.Jaccard)
	}

	y, _ := m.Catalog().Lookup("y")
	clf, err := repro.TrainClassifier(snap, y, repro.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := m.Catalog().Lookup("x")
	if pred, _ := clf.Predict([]repro.Item{x}); !pred {
		t.Error("classifier should predict y from x")
	}
}
