package repro

import (
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fpgrowth"
	"repro/internal/itemset"
	"repro/internal/privacy"
	"repro/internal/rules"
	"repro/internal/son"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/transaction"
)

// Extensions beyond the paper's core workflow: streaming-window mining with
// drift detection, the CBA-style rule classifier its takeaways propose, and
// the SON partitioned miner for traces too large for one FP-tree.

// Streaming mining.
type (
	// StreamMiner maintains a sliding window of transactions and mines
	// rule snapshots from it.
	StreamMiner = stream.Miner
	// StreamConfig sizes the window and thresholds.
	StreamConfig = stream.Config
	// StreamDelta describes rule-set drift between two snapshots.
	StreamDelta = stream.Delta
)

// NewStreamMiner returns a sliding-window miner (nil catalog allocates one).
func NewStreamMiner(catalog *itemset.Catalog, cfg StreamConfig) (*StreamMiner, error) {
	return stream.New(catalog, cfg)
}

// DiffSnapshots compares two rule snapshots structurally.
var DiffSnapshots = stream.Diff

// Rule-based classification.
type (
	// Classifier predicts a target item from mined cause rules.
	Classifier = classify.Classifier
	// ClassifierOptions tunes rule selection.
	ClassifierOptions = classify.Options
	// ClassifierMetrics is the evaluation scorecard.
	ClassifierMetrics = classify.Metrics
)

// TrainClassifier builds a CBA-style classifier from mined rules, ranking
// by marginal confidence.
var TrainClassifier = classify.Train

// TrainClassifierWithCoverage builds the classifier with database-coverage
// selection: each rule must clear the precision floor on the training
// transactions *not covered by earlier rules*, the CBA refinement that
// keeps an ordered rule list honest.
var TrainClassifierWithCoverage = classify.TrainWithCoverage

// Raw mining layer, for callers that build transaction databases directly
// (market-basket style) rather than going through a Frame.
type (
	// TransactionDB is the mining database: one itemset per record.
	TransactionDB = transaction.DB
	// Rule is an association rule with its quality metrics (support,
	// confidence, lift, leverage, conviction, plus the null-invariant
	// measures as methods).
	Rule = rules.Rule
	// Item is a dense item id from a Catalog.
	Item = itemset.Item
	// Catalog interns item names.
	Catalog = itemset.Catalog
	// Frequent is a frequent itemset with its support count.
	Frequent = itemset.Frequent
)

// NewTransactionDB returns an empty database (nil catalog allocates one).
func NewTransactionDB(catalog *itemset.Catalog) *TransactionDB {
	return transaction.NewDB(catalog)
}

// NewCatalog returns an empty item catalog.
var NewCatalog = itemset.NewCatalog

// MineSON runs the partitioned SON miner: exactly FP-Growth's results,
// computed over independently mined partitions plus one verification pass,
// the structure used to scale mining out across machines.
var MineSON = son.Mine

// MineTopK returns the k most frequent itemsets without a support
// threshold (ties at the k-th count included).
var MineTopK = fpgrowth.MineTopK

// SONOptions configures MineSON.
type SONOptions = son.Options

// GenerateRules derives association rules from frequent itemsets.
var GenerateRules = rules.Generate

// RuleOptions configures GenerateRules.
type RuleOptions = rules.Options

// Negative (protective) association rules: X ⇒ ¬Y.
type (
	// NegativeRule states that the antecedent suppresses the consequent.
	NegativeRule = rules.NegativeRule
	// NegativeOptions configures GenerateNegativeRules.
	NegativeOptions = rules.NegativeOptions
	// NegativeRuleView is a rendered protective rule.
	NegativeRuleView = core.NegativeRuleView
)

// GenerateNegativeRules derives protective rules for one consequent item.
var GenerateNegativeRules = rules.GenerateNegative

// Bootstrap confidence intervals on rule metrics.
type (
	// RuleCI is a two-sided percentile interval.
	RuleCI = rules.CI
	// BootstrapResult carries the support/confidence/lift intervals.
	BootstrapResult = rules.BootstrapResult
)

// BootstrapRule resamples the database to produce percentile confidence
// intervals for one rule's metrics.
var BootstrapRule = rules.Bootstrap

// FormatNegative renders protective rules in the table style.
var FormatNegative = core.FormatNegative

// ClosedItemsets extracts the closed itemsets (no superset of equal count):
// the lossless compression of a frequent set.
var ClosedItemsets = itemset.Closed

// MaximalItemsets extracts the maximal itemsets (no frequent superset).
var MaximalItemsets = itemset.Maximal

// Differentially private release of mined supports.
type (
	// PrivacyOptions sets the budget for ReleasePrivate.
	PrivacyOptions = privacy.Options
	// PrivacyDistortion reports the error a release introduced.
	PrivacyDistortion = privacy.Distortion
)

// ReleasePrivate returns a Laplace-noised copy of mined itemset supports
// under the given privacy budget.
func ReleasePrivate(g *stats.RNG, fs []Frequent, opts PrivacyOptions) ([]Frequent, error) {
	return privacy.Release(g, fs, opts)
}

// MeasurePrivacyDistortion compares a private release against the exact
// itemsets.
var MeasurePrivacyDistortion = privacy.Measure

// NewRNG returns the library's seeded random generator (used by the trace
// simulators and the privacy mechanism).
var NewRNG = stats.NewRNG

// RNG is the seeded random generator type.
type RNG = stats.RNG

// Experiment extensions.
type (
	// PredictionResult is the failure-prediction scorecard per trace.
	PredictionResult = experiments.PredictionResult
)
